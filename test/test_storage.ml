module Backend = Riot_storage.Backend
module Io_stats = Riot_storage.Io_stats
module Daf = Riot_storage.Daf
module Lab_tree = Riot_storage.Lab_tree
module Block_store = Riot_storage.Block_store
module Buffer_pool = Riot_storage.Buffer_pool
module Config = Riot_ir.Config

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let layout ~grid ~block =
  { Config.grid; block_elems = block; elem_size = 8 }

let tmpdir () = Filename.temp_file "riot" "" |> fun f -> Sys.remove f; f

let sim () = Backend.sim ~read_bw:96e6 ~write_bw:60e6 ~request_overhead:0.01 ()

let payload layout seed =
  let n = Config.block_elems_total layout in
  Array.init n (fun i -> float_of_int (seed * 1000) +. float_of_int i)

let bytes_of_floats a =
  let b = Bytes.create (Array.length a * 8) in
  Array.iteri (fun i v -> Bytes.set_int64_le b (i * 8) (Int64.bits_of_float v)) a;
  b

let floats_of_bytes b =
  Array.init (Bytes.length b / 8) (fun i -> Int64.float_of_bits (Bytes.get_int64_le b (i * 8)))

(* --- Backends ------------------------------------------------------------ *)

let test_sim_backend_roundtrip () =
  let b = sim () in
  b.Backend.pwrite ~name:"x" ~off:100 ~data:(Bytes.of_string "hello");
  let r = b.Backend.pread ~name:"x" ~off:100 ~len:5 in
  Alcotest.(check string) "roundtrip" "hello" (Bytes.to_string r);
  check_int "size" 105 (b.Backend.size ~name:"x");
  (* Overwrite in the middle. *)
  b.Backend.pwrite ~name:"x" ~off:102 ~data:(Bytes.of_string "LL");
  Alcotest.(check string) "middle overwrite" "heLLo"
    (Bytes.to_string (b.Backend.pread ~name:"x" ~off:100 ~len:5));
  check_int "reads counted" 2 b.Backend.stats.Io_stats.reads;
  check_int "writes counted" 2 b.Backend.stats.Io_stats.writes;
  check_bool "virtual time advanced" true (b.Backend.stats.Io_stats.virtual_time > 0.)

let test_file_backend_roundtrip () =
  let root = tmpdir () in
  let b = Backend.file ~root in
  b.Backend.pwrite ~name:"y" ~off:0 ~data:(Bytes.of_string "abcdef");
  b.Backend.pwrite ~name:"y" ~off:2 ~data:(Bytes.of_string "XY");
  Alcotest.(check string) "file roundtrip" "abXYef"
    (Bytes.to_string (b.Backend.pread ~name:"y" ~off:0 ~len:6));
  check_int "bytes written" 8 b.Backend.stats.Io_stats.bytes_written;
  (* Reading past EOF yields zeroes. *)
  let r = b.Backend.pread ~name:"y" ~off:4 ~len:8 in
  Alcotest.(check string) "tail" "ef" (Bytes.to_string (Bytes.sub r 0 2));
  check_bool "zero fill" true (Bytes.get r 7 = '\000');
  b.Backend.close ()

let test_discard_io_counts () =
  let b = sim () in
  b.Backend.read_discard ~name:"z" ~off:0 ~len:1000;
  b.Backend.write_discard ~name:"z" ~off:0 ~len:500;
  check_int "bytes read" 1000 b.Backend.stats.Io_stats.bytes_read;
  check_int "bytes written" 500 b.Backend.stats.Io_stats.bytes_written;
  check_int "size grows" 500 (b.Backend.size ~name:"z")

(* --- DAF ------------------------------------------------------------------ *)

let test_daf_roundtrip () =
  let l = layout ~grid:[| 3; 4 |] ~block:[| 5; 7 |] in
  let b = sim () in
  let d = Daf.create b ~name:"A" ~layout:l in
  let p12 = payload l 12 and p00 = payload l 1 in
  Daf.write_block d [ 1; 2 ] (bytes_of_floats p12);
  Daf.write_block d [ 0; 0 ] (bytes_of_floats p00);
  check_bool "block roundtrip" true (floats_of_bytes (Daf.read_block d [ 1; 2 ]) = p12);
  check_bool "second block" true (floats_of_bytes (Daf.read_block d [ 0; 0 ]) = p00);
  (* Unwritten blocks are zeroes. *)
  check_bool "unwritten zero" true
    (Array.for_all (( = ) 0.) (floats_of_bytes (Daf.read_block d [ 2; 3 ])));
  check_bool "bad arity" true
    (try ignore (Daf.read_block d [ 1 ]); false with Invalid_argument _ -> true);
  check_bool "out of grid" true
    (try ignore (Daf.read_block d [ 3; 0 ]); false with Invalid_argument _ -> true)

let test_daf_linearization_column_major () =
  let l = layout ~grid:[| 3; 4 |] ~block:[| 1; 1 |] in
  check_int "first column" 1 (Daf.linear_index l [ 1; 0 ]);
  check_int "second column" 3 (Daf.linear_index l [ 0; 1 ]);
  check_int "last" 11 (Daf.linear_index l [ 2; 3 ])

(* --- LAB-tree --------------------------------------------------------------- *)

let test_lab_roundtrip () =
  let l = layout ~grid:[| 4; 4 |] ~block:[| 3; 3 |] in
  let b = sim () in
  let t = Lab_tree.create b ~name:"B" ~layout:l in
  Lab_tree.write_block t [ 2; 1 ] (bytes_of_floats (payload l 21));
  Lab_tree.write_block t [ 0; 3 ] (bytes_of_floats (payload l 3));
  check_bool "roundtrip" true
    (floats_of_bytes (Lab_tree.read_block t [ 2; 1 ]) = payload l 21);
  check_bool "unwritten zero" true
    (Array.for_all (( = ) 0.) (floats_of_bytes (Lab_tree.read_block t [ 1; 1 ])));
  check_int "two blocks" 2 (Lab_tree.block_count t);
  (* Overwrite stays in place. *)
  Lab_tree.write_block t [ 2; 1 ] (bytes_of_floats (payload l 99));
  check_int "still two blocks" 2 (Lab_tree.block_count t);
  check_bool "overwritten" true
    (floats_of_bytes (Lab_tree.read_block t [ 2; 1 ]) = payload l 99)

let test_lab_splits () =
  (* Enough keys to force leaf and internal splits (max 64 per node). *)
  let l = layout ~grid:[| 100; 100 |] ~block:[| 2; 2 |] in
  let b = sim () in
  let t = Lab_tree.create b ~name:"C" ~layout:l in
  let blocks = List.init 500 (fun i -> [ i mod 100; i / 100 ]) in
  List.iteri
    (fun i idx -> Lab_tree.write_block t idx (bytes_of_floats (payload l i)))
    blocks;
  check_int "all stored" 500 (Lab_tree.block_count t);
  check_bool "tree grew" true (Lab_tree.depth t >= 2);
  List.iteri
    (fun i idx ->
      if floats_of_bytes (Lab_tree.read_block t idx) <> payload l i then
        Alcotest.failf "block %d corrupted after splits" i)
    blocks

let test_lab_persistence () =
  (* Re-open from the same backend: meta page must restore the tree. *)
  let l = layout ~grid:[| 4; 4 |] ~block:[| 2; 2 |] in
  let b = sim () in
  let t = Lab_tree.create b ~name:"P" ~layout:l in
  Lab_tree.write_block t [ 3; 3 ] (bytes_of_floats (payload l 7));
  let t2 = Lab_tree.create b ~name:"P" ~layout:l in
  check_bool "reopened" true
    (floats_of_bytes (Lab_tree.read_block t2 [ 3; 3 ]) = payload l 7)

let test_formats_agree () =
  let l = layout ~grid:[| 3; 3 |] ~block:[| 4; 4 |] in
  let b = sim () in
  let d = Block_store.create b ~format:Block_store.Daf_format ~name:"D1" ~layout:l in
  let t = Block_store.create b ~format:Block_store.Lab_format ~name:"D2" ~layout:l in
  for i = 0 to 2 do
    for j = 0 to 2 do
      let p = payload l ((i * 3) + j) in
      Block_store.write_floats d [ i; j ] p;
      Block_store.write_floats t [ i; j ] p
    done
  done;
  for i = 0 to 2 do
    for j = 0 to 2 do
      if Block_store.read_floats d [ i; j ] <> Block_store.read_floats t [ i; j ] then
        Alcotest.failf "formats disagree at (%d,%d)" i j
    done
  done

(* --- Buffer pool -------------------------------------------------------------- *)

let mk_store ?(name = "S") b l =
  Block_store.create b ~format:Block_store.Daf_format ~name ~layout:l

let test_pool_hit_miss () =
  let l = layout ~grid:[| 4; 1 |] ~block:[| 2; 2 |] in
  let b = sim () in
  let s = mk_store b l in
  Block_store.write_floats s [ 0; 0 ] (payload l 0);
  let before = b.Backend.stats.Io_stats.reads in
  let pool = Buffer_pool.create ~cap_bytes:(10 * 32) () in
  ignore (Buffer_pool.get pool s [ 0; 0 ]);
  ignore (Buffer_pool.get pool s [ 0; 0 ]);
  check_int "one physical read" (before + 1) b.Backend.stats.Io_stats.reads;
  check_bool "contains" true (Buffer_pool.contains pool ("S", [ 0; 0 ]))

let test_pool_eviction_lru () =
  let l = layout ~grid:[| 4; 1 |] ~block:[| 2; 2 |] in
  let bb = Config.block_bytes l in
  let b = sim () in
  let s = mk_store b l in
  let pool = Buffer_pool.create ~cap_bytes:(2 * bb) () in
  ignore (Buffer_pool.get pool s [ 0; 0 ]);
  ignore (Buffer_pool.get pool s [ 1; 0 ]);
  ignore (Buffer_pool.get pool s [ 0; 0 ]);  (* refresh 0 *)
  ignore (Buffer_pool.get pool s [ 2; 0 ]);  (* evicts LRU = block 1 *)
  check_bool "block 1 evicted" false (Buffer_pool.contains pool ("S", [ 1; 0 ]));
  check_bool "block 0 kept" true (Buffer_pool.contains pool ("S", [ 0; 0 ]));
  check_int "peak = cap" (2 * bb) (Buffer_pool.peak_bytes pool)

let test_pool_pinning () =
  let l = layout ~grid:[| 4; 1 |] ~block:[| 2; 2 |] in
  let bb = Config.block_bytes l in
  let b = sim () in
  let s = mk_store b l in
  let pool = Buffer_pool.create ~cap_bytes:(2 * bb) () in
  ignore (Buffer_pool.get pool s [ 0; 0 ]);
  Buffer_pool.pin pool ("S", [ 0; 0 ]);
  ignore (Buffer_pool.get pool s [ 1; 0 ]);
  ignore (Buffer_pool.get pool s [ 2; 0 ]);  (* must evict 1, not pinned 0 *)
  check_bool "pinned survives" true (Buffer_pool.contains pool ("S", [ 0; 0 ]));
  check_bool "unpinned evicted" false (Buffer_pool.contains pool ("S", [ 1; 0 ]));
  (* All pinned -> cannot make room. *)
  Buffer_pool.pin pool ("S", [ 2; 0 ]);
  check_bool "insufficient memory raised" true
    (try ignore (Buffer_pool.get pool s [ 3; 0 ]); false
     with Buffer_pool.Insufficient_memory _ -> true);
  Buffer_pool.unpin pool ("S", [ 0; 0 ]);
  ignore (Buffer_pool.get pool s [ 3; 0 ]);
  check_bool "after unpin ok" true (Buffer_pool.contains pool ("S", [ 3; 0 ]))

let test_pool_dirty_flush_on_evict () =
  let l = layout ~grid:[| 3; 1 |] ~block:[| 2; 2 |] in
  let bb = Config.block_bytes l in
  let b = sim () in
  let s = mk_store b l in
  let pool = Buffer_pool.create ~cap_bytes:(1 * bb) () in
  let data = Buffer_pool.get_for_write pool s [ 0; 0 ] in
  data.(0) <- 42.;
  Buffer_pool.mark_dirty pool ("S", [ 0; 0 ]);
  ignore (Buffer_pool.get pool s [ 1; 0 ]);  (* evicts and must flush *)
  check_bool "flushed value" true ((Block_store.read_floats s [ 0; 0 ]).(0) = 42.)

let test_pool_drop_if_dead () =
  let l = layout ~grid:[| 3; 1 |] ~block:[| 2; 2 |] in
  let b = sim () in
  let s = mk_store b l in
  let pool = Buffer_pool.create ~cap_bytes:1000000 () in
  let data = Buffer_pool.get_for_write pool s [ 0; 0 ] in
  data.(0) <- 7.;
  Buffer_pool.mark_dirty pool ("S", [ 0; 0 ]);
  Buffer_pool.drop_if_dead pool ("S", [ 0; 0 ]);
  check_bool "dropped" false (Buffer_pool.contains pool ("S", [ 0; 0 ]));
  (* Dead data never reached the store. *)
  check_bool "store untouched" true ((Block_store.read_floats s [ 0; 0 ]).(0) = 0.)

let test_pool_drop_clean_dead () =
  (* Regression: drop_if_dead used to release only dirty buffers, so clean
     dead blocks (read, consumed, never written) lingered and inflated
     used/peak accounting until eviction pressure hit them. *)
  let l = layout ~grid:[| 3; 1 |] ~block:[| 2; 2 |] in
  let b = sim () in
  let s = mk_store b l in
  let pool = Buffer_pool.create ~cap_bytes:1000000 () in
  ignore (Buffer_pool.get pool s [ 0; 0 ]);  (* clean: straight from disk *)
  let used = Buffer_pool.used_bytes pool in
  check_bool "resident before" true (Buffer_pool.contains pool ("S", [ 0; 0 ]));
  Buffer_pool.drop_if_dead pool ("S", [ 0; 0 ]);
  check_bool "clean dead block dropped" false (Buffer_pool.contains pool ("S", [ 0; 0 ]));
  check_int "memory released" (used - Config.block_bytes l) (Buffer_pool.used_bytes pool);
  (* A pinned block is not dead, clean or dirty. *)
  ignore (Buffer_pool.get pool s [ 1; 0 ]);
  Buffer_pool.pin pool ("S", [ 1; 0 ]);
  Buffer_pool.drop_if_dead pool ("S", [ 1; 0 ]);
  check_bool "pinned block survives" true (Buffer_pool.contains pool ("S", [ 1; 0 ]))

let test_pool_lru_order () =
  (* The intrusive LRU list orders buffers least- to most-recently used, and
     eviction consumes it from the cold end, skipping pinned buffers. *)
  let l = layout ~grid:[| 6; 1 |] ~block:[| 2; 2 |] in
  let bb = Config.block_bytes l in
  let b = sim () in
  let s = mk_store b l in
  let pool = Buffer_pool.create ~cap_bytes:(4 * bb) () in
  List.iter (fun i -> ignore (Buffer_pool.get pool s [ i; 0 ])) [ 0; 1; 2; 3 ];
  Alcotest.(check (list (pair string (list int))))
    "insertion order"
    [ ("S", [ 0; 0 ]); ("S", [ 1; 0 ]); ("S", [ 2; 0 ]); ("S", [ 3; 0 ]) ]
    (Buffer_pool.lru_keys pool);
  ignore (Buffer_pool.get pool s [ 1; 0 ]);  (* touch 1 -> most recent *)
  ignore (Buffer_pool.get pool s [ 0; 0 ]);  (* touch 0 -> most recent *)
  Alcotest.(check (list (pair string (list int))))
    "touches reorder"
    [ ("S", [ 2; 0 ]); ("S", [ 3; 0 ]); ("S", [ 1; 0 ]); ("S", [ 0; 0 ]) ]
    (Buffer_pool.lru_keys pool);
  Buffer_pool.pin pool ("S", [ 2; 0 ]);
  ignore (Buffer_pool.get pool s [ 4; 0 ]);  (* 2 is pinned: 3 is the victim *)
  check_bool "pinned cold block skipped" true (Buffer_pool.contains pool ("S", [ 2; 0 ]));
  check_bool "next-coldest evicted" false (Buffer_pool.contains pool ("S", [ 3; 0 ]));
  Buffer_pool.unpin pool ("S", [ 2; 0 ]);
  ignore (Buffer_pool.get pool s [ 5; 0 ]);  (* now 2 goes *)
  check_bool "unpinned cold block evicted" false
    (Buffer_pool.contains pool ("S", [ 2; 0 ]));
  Alcotest.(check (list (pair string (list int))))
    "final order"
    [ ("S", [ 1; 0 ]); ("S", [ 0; 0 ]); ("S", [ 4; 0 ]); ("S", [ 5; 0 ]) ]
    (Buffer_pool.lru_keys pool)

let test_pool_stats_counters () =
  (* Pool hits/misses/evictions/flushes land in the backend's Io_stats when
     the pool is created with ~stats. *)
  let l = layout ~grid:[| 4; 1 |] ~block:[| 2; 2 |] in
  let bb = Config.block_bytes l in
  let b = sim () in
  let s = mk_store b l in
  let st = b.Backend.stats in
  let pool = Buffer_pool.create ~stats:st ~cap_bytes:(2 * bb) () in
  ignore (Buffer_pool.get pool s [ 0; 0 ]);          (* miss *)
  ignore (Buffer_pool.get pool s [ 0; 0 ]);          (* hit *)
  let d = Buffer_pool.get_for_write pool s [ 1; 0 ] in  (* miss (no read) *)
  d.(0) <- 1.;
  Buffer_pool.mark_dirty pool ("S", [ 1; 0 ]);
  ignore (Buffer_pool.get pool s [ 2; 0 ]);  (* miss; evicts 0 (clean) *)
  ignore (Buffer_pool.get pool s [ 3; 0 ]);  (* miss; evicts dirty 1 -> flush *)
  check_int "hits" 1 st.Io_stats.pool_hits;
  check_int "misses" 4 st.Io_stats.pool_misses;
  check_int "evictions" 2 st.Io_stats.pool_evictions;
  check_int "flushes" 1 st.Io_stats.pool_flushes;
  (* Regression: [write_through] used to clear [dirty] by hand without
     counting the flush, so write-through traffic vanished from the pool
     stats. *)
  Buffer_pool.mark_dirty pool ("S", [ 3; 0 ]);
  Buffer_pool.write_through pool s [ 3; 0 ];
  check_int "write-through counted as flush" 2 st.Io_stats.pool_flushes;
  (* Write-through is unconditional (journalled and opportunistic callers
     rely on the write happening even for clean buffers). *)
  Buffer_pool.write_through pool s [ 3; 0 ];
  check_int "clean write-through still flushes" 3 st.Io_stats.pool_flushes

let test_per_stream_stats () =
  let b = sim () in
  b.Backend.pwrite ~name:"x.daf" ~off:0 ~data:(Bytes.create 100);
  b.Backend.pwrite ~name:"y.daf" ~off:0 ~data:(Bytes.create 300);
  ignore (b.Backend.pread ~name:"x.daf" ~off:0 ~len:100);
  ignore (b.Backend.pread ~name:"x.daf" ~off:0 ~len:50);
  let counts = Io_stats.stream_counts b.Backend.stats in
  let x = List.assoc "x.daf" counts and y = List.assoc "y.daf" counts in
  check_int "x reads" 2 x.Io_stats.c_reads;
  check_int "x bytes read" 150 x.Io_stats.c_bytes_read;
  check_int "x writes" 1 x.Io_stats.c_writes;
  check_int "y writes" 1 y.Io_stats.c_writes;
  check_int "y bytes written" 300 y.Io_stats.c_bytes_written;
  check_int "y reads" 0 y.Io_stats.c_reads;
  (* Aggregates still see everything. *)
  check_int "aggregate reads" 2 b.Backend.stats.Io_stats.reads;
  check_int "aggregate bytes written" 400 b.Backend.stats.Io_stats.bytes_written;
  (* The read-size histogram bucketed both requests by power of two. *)
  let hist = Io_stats.stream_read_hist b.Backend.stats "x.daf" in
  check_int "two histogram entries" 2 (List.length hist);
  check_int "total histogrammed" 2 (List.fold_left (fun a (_, n) -> a + n) 0 hist);
  (* Deltas count streams absent from the snapshot from zero. *)
  let before = counts in
  ignore (b.Backend.pread ~name:"z.daf" ~off:0 ~len:300);
  let delta = Io_stats.counts_delta ~before ~after:(Io_stats.stream_counts b.Backend.stats) in
  check_int "new stream from zero" 1 (List.assoc "z.daf" delta).Io_stats.c_reads;
  check_int "quiet stream zero delta" 0 (List.assoc "x.daf" delta).Io_stats.c_reads

let test_pool_phantom () =
  let l = layout ~grid:[| 4; 1 |] ~block:[| 1000; 1000 |] in
  let b = sim () in
  let s = mk_store b l in
  let pool = Buffer_pool.create ~phantom:true ~cap_bytes:(3 * Config.block_bytes l) () in
  let data = Buffer_pool.get pool s [ 0; 0 ] in
  check_int "no real buffer" 0 (Array.length data);
  check_int "io accounted" (Config.block_bytes l) b.Backend.stats.Io_stats.bytes_read;
  check_int "memory accounted" (Config.block_bytes l) (Buffer_pool.used_bytes pool)

let test_lab_on_file_backend () =
  let root = tmpdir () in
  let l = layout ~grid:[| 6; 6 |] ~block:[| 3; 3 |] in
  let b = Backend.file ~root in
  let t = Lab_tree.create b ~name:"F" ~layout:l in
  for i = 0 to 5 do
    for j = 0 to 5 do
      Lab_tree.write_block t [ i; j ] (bytes_of_floats (payload l ((i * 6) + j)))
    done
  done;
  b.Backend.sync ();
  b.Backend.close ();
  (* Fresh backend and handle: everything must come back from disk. *)
  let b2 = Backend.file ~root in
  let t2 = Lab_tree.create b2 ~name:"F" ~layout:l in
  check_int "blocks persisted" 36 (Lab_tree.block_count t2);
  for i = 0 to 5 do
    for j = 0 to 5 do
      if floats_of_bytes (Lab_tree.read_block t2 [ i; j ]) <> payload l ((i * 6) + j)
      then Alcotest.failf "block (%d,%d) lost across restart" i j
    done
  done;
  b2.Backend.close ()

(* The EOF contract pinned in backend.mli: [pread] at or past the end of a
   stream zero-fills, always returns exactly [len] bytes, and never changes
   the stream's size.  Both backends must agree byte for byte. *)
let test_pread_past_eof () =
  List.iter
    (fun (label, (b : Backend.t)) ->
      b.Backend.pwrite ~name:"e" ~off:0 ~data:(Bytes.of_string "0123456789");
      (* Straddling the end: 6 data bytes then 6 zeroes. *)
      let r = b.Backend.pread ~name:"e" ~off:4 ~len:12 in
      check_int (label ^ " straddle len") 12 (Bytes.length r);
      Alcotest.(check string) (label ^ " straddle")
        "456789\000\000\000\000\000\000" (Bytes.to_string r);
      (* Starting exactly at the end. *)
      let r = b.Backend.pread ~name:"e" ~off:10 ~len:4 in
      Alcotest.(check string) (label ^ " at end") "\000\000\000\000"
        (Bytes.to_string r);
      (* Entirely past the end. *)
      let r = b.Backend.pread ~name:"e" ~off:1000 ~len:3 in
      Alcotest.(check string) (label ^ " far past end") "\000\000\000"
        (Bytes.to_string r);
      (* A stream never written at all reads as zeroes. *)
      let r = b.Backend.pread ~name:"never" ~off:0 ~len:5 in
      Alcotest.(check string) (label ^ " empty stream") "\000\000\000\000\000"
        (Bytes.to_string r);
      (* None of the above grew anything. *)
      check_int (label ^ " size unchanged") 10 (b.Backend.size ~name:"e");
      check_int (label ^ " empty size") 0 (b.Backend.size ~name:"never");
      b.Backend.close ())
    [ ("sim", sim ()); ("file", Backend.file ~root:(tmpdir ())) ]

(* Regression: the file backend's [write_discard] used to write whatever
   happened to sit in its shared scratch buffer — a previous [read_discard]
   would leave real data there, and the "discarded" region came back as
   that garbage instead of zeroes. *)
let test_write_discard_zeroes () =
  let root = tmpdir () in
  let b = Backend.file ~root in
  b.Backend.pwrite ~name:"w" ~off:0 ~data:(Bytes.make 4096 'Z');
  (* Prime the scratch buffer with non-zero data. *)
  b.Backend.read_discard ~name:"w" ~off:0 ~len:4096;
  b.Backend.write_discard ~name:"w" ~off:4096 ~len:4096;
  let r = b.Backend.pread ~name:"w" ~off:4096 ~len:4096 in
  check_bool "discarded region reads back as zeroes" true
    (String.for_all (fun c -> c = '\000') (Bytes.to_string r));
  check_int "size grew past the discarded region" 8192 (b.Backend.size ~name:"w");
  b.Backend.close ()

(* Regression: EOF-short [pread]s on the file backend used to account the
   full requested [len]; only the bytes actually served may be charged —
   the zero-filled suffix is synthesized, not read.  [read_discard] is the
   exception by contract: it models the cost of a read for phantom
   cost-validation runs against never-materialised regions, so it keeps
   full-length accounting, like the sim backend (see backend.mli). *)
let test_file_eof_accounting () =
  let root = tmpdir () in
  let b = Backend.file ~root in
  b.Backend.pwrite ~name:"e" ~off:0 ~data:(Bytes.of_string "0123456789");
  Io_stats.reset b.Backend.stats;
  ignore (b.Backend.pread ~name:"e" ~off:4 ~len:12);  (* 6 served + 6 zero-fill *)
  check_int "straddling read charges actual bytes" 6
    b.Backend.stats.Io_stats.bytes_read;
  ignore (b.Backend.pread ~name:"e" ~off:100 ~len:8);  (* entirely past EOF *)
  check_int "past-EOF read moves nothing" 6 b.Backend.stats.Io_stats.bytes_read;
  b.Backend.read_discard ~name:"e" ~off:8 ~len:16;  (* 2 served, 16 modeled *)
  check_int "discard charges the modeled request" 22
    b.Backend.stats.Io_stats.bytes_read;
  check_int "every request still counted" 3 b.Backend.stats.Io_stats.reads;
  b.Backend.close ()

let test_stats_reset () =
  let b = sim () in
  b.Backend.pwrite ~name:"x" ~off:0 ~data:(Bytes.create 100);
  ignore (b.Backend.pread ~name:"x" ~off:0 ~len:100);
  Riot_storage.Io_stats.reset b.Backend.stats;
  check_int "reads reset" 0 b.Backend.stats.Riot_storage.Io_stats.reads;
  check_int "bytes reset" 0 b.Backend.stats.Riot_storage.Io_stats.bytes_written;
  check_bool "vtime reset" true (b.Backend.stats.Riot_storage.Io_stats.virtual_time = 0.)

let suite =
  ( "storage",
    [ Alcotest.test_case "sim backend" `Quick test_sim_backend_roundtrip;
      Alcotest.test_case "file backend" `Quick test_file_backend_roundtrip;
      Alcotest.test_case "discard io" `Quick test_discard_io_counts;
      Alcotest.test_case "daf roundtrip" `Quick test_daf_roundtrip;
      Alcotest.test_case "daf column-major" `Quick test_daf_linearization_column_major;
      Alcotest.test_case "lab roundtrip" `Quick test_lab_roundtrip;
      Alcotest.test_case "lab splits" `Quick test_lab_splits;
      Alcotest.test_case "lab persistence" `Quick test_lab_persistence;
      Alcotest.test_case "formats agree" `Quick test_formats_agree;
      Alcotest.test_case "pool hit/miss" `Quick test_pool_hit_miss;
      Alcotest.test_case "pool LRU eviction" `Quick test_pool_eviction_lru;
      Alcotest.test_case "pool pinning" `Quick test_pool_pinning;
      Alcotest.test_case "pool dirty flush" `Quick test_pool_dirty_flush_on_evict;
      Alcotest.test_case "pool drop if dead" `Quick test_pool_drop_if_dead;
      Alcotest.test_case "pool drops clean dead blocks" `Quick test_pool_drop_clean_dead;
      Alcotest.test_case "pool LRU order" `Quick test_pool_lru_order;
      Alcotest.test_case "pool stats counters" `Quick test_pool_stats_counters;
      Alcotest.test_case "per-stream stats" `Quick test_per_stream_stats;
      Alcotest.test_case "pool phantom" `Quick test_pool_phantom;
      Alcotest.test_case "lab on file backend" `Quick test_lab_on_file_backend;
      Alcotest.test_case "stats reset" `Quick test_stats_reset;
      Alcotest.test_case "pread past EOF" `Quick test_pread_past_eof;
      Alcotest.test_case "write_discard writes zeroes" `Quick
        test_write_discard_zeroes;
      Alcotest.test_case "file EOF reads charge actual bytes" `Quick
        test_file_eof_accounting ] )
