(* Execution-trace tests: the two-matmuls plan yields a stable, well-formed
   event stream (balanced step boundaries and pins, no read-after-drop, event
   counts equal to the plan's aggregate I/O), and every event survives a
   JSONL round-trip through the parser. *)

module Api = Riotshare.Api
module Programs = Riot_ops.Programs
module Cplan = Riot_plan.Cplan
module Search = Riot_optimizer.Search
module Engine = Riot_exec.Engine
module Trace = Riot_exec.Trace
module Backend = Riot_storage.Backend
module Block_store = Riot_storage.Block_store

let sim_backend () =
  Backend.sim ~retain_data:false ~read_bw:96e6 ~write_bw:60e6 ~request_overhead:1e-3 ()

let traced_best_run () =
  let config = Programs.scale_down ~factor:1000 Programs.table3_config_a in
  let opt = Api.optimize (Programs.two_matmuls ()) ~config in
  let best = Api.best opt in
  let sink, collected = Trace.collector () in
  let backend = sim_backend () in
  ignore (Api.execute ~compute:false ~trace:sink best ~backend ~format:Block_store.Daf_format);
  (best, collected ())

let events = lazy (traced_best_run ())

(* Two identical runs must narrate identically (the trace is a function of
   the plan, not of pool state or timing). *)
let test_deterministic () =
  let _, a = traced_best_run () in
  let _, b = Lazy.force events in
  Alcotest.(check int) "same length" (List.length b) (List.length a);
  Alcotest.(check bool) "same sequence" true (a = b)

let test_step_boundaries () =
  let _, evs = Lazy.force events in
  let cur = ref None and next = ref 0 in
  List.iter
    (fun e ->
      match (e, !cur) with
      | Trace.Step_begin { step; _ }, None ->
          Alcotest.(check int) "steps in order" !next step;
          cur := Some step
      | Trace.Step_begin _, Some _ -> Alcotest.fail "nested step_begin"
      | Trace.Step_end { step }, Some s ->
          Alcotest.(check int) "end matches begin" s step;
          cur := None;
          incr next
      | Trace.Step_end _, None -> Alcotest.fail "step_end without begin"
      | (Trace.Read { step; _ } | Trace.Write { step; _ } | Trace.Pin_open { step; _ }
        | Trace.Pin_close { step; _ } | Trace.Drop { step; _ }
        | Trace.Evict { step; _ }), Some s ->
          Alcotest.(check int) "event inside its step" s step
      | _, None -> Alcotest.fail "event outside any step")
    evs;
  Alcotest.(check bool) "last step closed" true (!cur = None);
  Alcotest.(check bool) "at least one step" true (!next > 0)

let test_pins_balanced () =
  let _, evs = Lazy.force events in
  let depth = Hashtbl.create 16 in
  let get k = Option.value ~default:0 (Hashtbl.find_opt depth k) in
  List.iter
    (fun e ->
      match e with
      | Trace.Pin_open { array; index; _ } ->
          Hashtbl.replace depth (array, index) (get (array, index) + 1)
      | Trace.Pin_close { array; index; _ } ->
          let d = get (array, index) in
          Alcotest.(check bool) "unpin of a pinned block" true (d > 0);
          Hashtbl.replace depth (array, index) (d - 1)
      | _ -> ())
    evs;
  Hashtbl.iter
    (fun (array, _) d ->
      Alcotest.(check int) (Printf.sprintf "pins on %s balanced" array) 0 d)
    depth

(* Replay residency: memory reads only hit resident blocks, drops only
   release resident ones, and nothing is read after being dropped without an
   intervening disk read or write re-materialising it. *)
let test_no_read_after_drop () =
  let _, evs = Lazy.force events in
  let resident = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match e with
      | Trace.Read { array; index; src = Trace.Disk; _ }
      | Trace.Write { array; index; _ } ->
          Hashtbl.replace resident (array, index) ()
      | Trace.Read { array; index; src = Trace.Memory; _ } ->
          Alcotest.(check bool)
            (Printf.sprintf "memory read of resident %s" array)
            true
            (Hashtbl.mem resident (array, index))
      | Trace.Drop { array; index; _ } | Trace.Evict { array; index; _ } ->
          Alcotest.(check bool)
            (Printf.sprintf "drop of resident %s" array)
            true
            (Hashtbl.mem resident (array, index));
          Hashtbl.remove resident (array, index)
      | _ -> ())
    evs

(* The trace's event counts are the plan's aggregate I/O: the narrated
   execution is the costed execution. *)
let test_counts_match_plan () =
  let best, evs = Lazy.force events in
  let count f = List.length (List.filter f evs) in
  Alcotest.(check int) "disk reads"
    best.Api.cplan.Cplan.read_ops
    (count (function Trace.Read { src = Trace.Disk; _ } -> true | _ -> false));
  Alcotest.(check int) "disk writes"
    best.Api.cplan.Cplan.write_ops
    (count (function Trace.Write { elided = false; _ } -> true | _ -> false));
  Alcotest.(check int) "steps"
    (Array.length best.Api.cplan.Cplan.steps)
    (count (function Trace.Step_begin _ -> true | _ -> false))

(* Golden prefix for add_mul's best plan: the opening events are pinned down
   exactly, so an accidental reordering of the engine's actions is caught
   even if every invariant above still holds. *)
let test_golden_prefix () =
  let config = Programs.scale_down ~factor:1000 Programs.table2 in
  let opt = Api.optimize (Programs.add_mul ()) ~config in
  let best = Api.best opt in
  let sink, collected = Trace.collector () in
  let backend = sim_backend () in
  ignore (Api.execute ~compute:false ~trace:sink best ~backend ~format:Block_store.Daf_format);
  let prefix n l = List.filteri (fun i _ -> i < n) l in
  let expected =
    [ Trace.Step_begin { step = 0; stmt = "s1"; instance = [ ("s1.i", 0); ("s1.j", 0) ] };
      Trace.Read { step = 0; array = "A"; index = [ 0; 0 ]; src = Trace.Disk };
      Trace.Read { step = 0; array = "B"; index = [ 0; 0 ]; src = Trace.Disk };
      Trace.Pin_open { step = 0; array = "C"; index = [ 0; 0 ] };
      Trace.Write { step = 0; array = "C"; index = [ 0; 0 ]; elided = true };
      Trace.Drop { step = 0; array = "A"; index = [ 0; 0 ] };
      Trace.Drop { step = 0; array = "B"; index = [ 0; 0 ] };
      Trace.Step_end { step = 0 } ]
  in
  List.iteri
    (fun i (exp, got) ->
      Alcotest.(check string)
        (Printf.sprintf "event %d" i)
        (Trace.to_json exp) (Trace.to_json got))
    (List.combine expected (prefix (List.length expected) (collected ())))

(* --- JSONL round-trip --------------------------------------------------------- *)

let test_jsonl_roundtrip () =
  let _, evs = Lazy.force events in
  List.iter
    (fun e ->
      let j = Trace.to_json e in
      Alcotest.(check bool) (Printf.sprintf "round-trip %s" j) true
        (Trace.of_json j = e))
    evs;
  (* And through the jsonl sink itself: emitted lines parse back to the
     original stream. *)
  let buf = Buffer.create 4096 in
  let sink = Trace.jsonl (fun line -> Buffer.add_string buf line; Buffer.add_char buf '\n') in
  List.iter sink.Trace.emit evs;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one line per event" (List.length evs) (List.length lines);
  Alcotest.(check bool) "stream parses back" true
    (List.map Trace.of_json lines = evs)

let test_jsonl_rejects_malformed () =
  List.iter
    (fun line ->
      Alcotest.check_raises ("rejects " ^ line)
        (Trace.Parse_error "")
        (fun () ->
          try ignore (Trace.of_json line)
          with Trace.Parse_error _ -> raise (Trace.Parse_error "")))
    [ "";
      "{}";
      "{\"ev\":\"bogus\",\"step\":0}";
      "{\"ev\":\"read\",\"step\":0}";
      "{\"ev\":\"step_end\",\"step\":1} trailing";
      "{\"ev\":\"read\",\"step\":0,\"array\":\"A\",\"index\":[0,0],\"src\":\"warp\"}" ]

let suite =
  ( "trace",
    [ Alcotest.test_case "deterministic" `Quick test_deterministic;
      Alcotest.test_case "step boundaries" `Quick test_step_boundaries;
      Alcotest.test_case "pins balanced" `Quick test_pins_balanced;
      Alcotest.test_case "no read after drop" `Quick test_no_read_after_drop;
      Alcotest.test_case "counts match plan" `Quick test_counts_match_plan;
      Alcotest.test_case "golden prefix (add_mul)" `Quick test_golden_prefix;
      Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
      Alcotest.test_case "jsonl rejects malformed" `Quick test_jsonl_rejects_malformed ] )
