(* The domain pool underneath the parallel optimizer: order preservation,
   jobs=1 identity, exception propagation, reuse across batches. *)

module Pool = Riot_base.Pool

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let ints = Alcotest.(list int)

let test_map_order () =
  let xs = List.init 100 Fun.id in
  Alcotest.check ints "parallel_map ~jobs:4 = List.map"
    (List.map (fun x -> (x * x) + 1) xs)
    (Pool.parallel_map ~jobs:4 (fun x -> (x * x) + 1) xs);
  Alcotest.check ints "more jobs than items"
    (List.map succ [ 1; 2; 3 ])
    (Pool.parallel_map ~jobs:8 succ [ 1; 2; 3 ]);
  Alcotest.check ints "empty list" [] (Pool.parallel_map ~jobs:4 succ []);
  Alcotest.check ints "singleton" [ 2 ] (Pool.parallel_map ~jobs:4 succ [ 1 ])

let test_jobs1_identity () =
  (* jobs=1 must be plain List.map: same result, no domains involved. *)
  let xs = List.init 50 Fun.id in
  let id0 = (Domain.self () :> int) in
  let seen = ref [] in
  let r =
    Pool.parallel_map ~jobs:1
      (fun x ->
        seen := (Domain.self () :> int) :: !seen;
        x * 3)
      xs
  in
  Alcotest.check ints "result" (List.map (fun x -> x * 3) xs) r;
  check_bool "all on the calling domain" true (List.for_all (( = ) id0) !seen)

let test_filter_map () =
  let xs = List.init 60 Fun.id in
  let f x = if x mod 3 = 0 then Some (x / 3) else None in
  Alcotest.check ints "parallel_filter_map = List.filter_map" (List.filter_map f xs)
    (Pool.parallel_filter_map ~jobs:4 f xs);
  Alcotest.check ints "jobs=1" (List.filter_map f xs)
    (Pool.parallel_filter_map ~jobs:1 f xs)

exception Boom of int

let test_exceptions () =
  let raises f = try ignore (f ()); None with Boom i -> Some i in
  check_bool "exception propagates (parallel)" true
    (raises (fun () ->
         Pool.parallel_map ~jobs:4
           (fun x -> if x = 7 then raise (Boom x) else x)
           (List.init 20 Fun.id))
    = Some 7);
  check_bool "exception propagates (jobs=1)" true
    (raises (fun () ->
         Pool.parallel_map ~jobs:1
           (fun x -> if x = 3 then raise (Boom x) else x)
           (List.init 5 Fun.id))
    = Some 3)

let test_pool_reuse () =
  (* One pool, many batches — including a batch that raises, after which the
     pool must still work. *)
  Pool.with_pool ~jobs:3 (fun pool ->
      check_int "jobs" 3 (Pool.jobs pool);
      for i = 1 to 5 do
        let xs = List.init (10 * i) Fun.id in
        Alcotest.check ints
          (Printf.sprintf "batch %d" i)
          (List.map (fun x -> x + i) xs)
          (Pool.map pool (fun x -> x + i) xs)
      done;
      check_bool "failing batch raises" true
        (try
           ignore (Pool.map pool (fun x -> if x = 2 then raise (Boom x) else x) [ 1; 2; 3 ]);
           false
         with Boom 2 -> true);
      Alcotest.check ints "pool survives a failed batch" [ 10; 20 ]
        (Pool.map pool (fun x -> x * 10) [ 1; 2 ]))

let test_create_shutdown () =
  let pool = Pool.create ~jobs:2 () in
  Alcotest.check ints "explicit create" [ 1; 4; 9 ]
    (Pool.map pool (fun x -> x * x) [ 1; 2; 3 ]);
  Pool.shutdown pool;
  check_bool "create ~jobs:0 rejected" true
    (try ignore (Pool.create ~jobs:0 ()); false with Invalid_argument _ -> true)

let test_riot_jobs_env () =
  (* RIOT_JOBS drives the default; unparsable or non-positive values fall
     back to 1 worker (never crash).  There is no portable unsetenv, so the
     variable is left empty afterwards — every other test passes ~jobs
     explicitly. *)
  Unix.putenv "RIOT_JOBS" "5";
  check_int "RIOT_JOBS=5" 5 (Pool.default_jobs ());
  Unix.putenv "RIOT_JOBS" " 3 ";
  check_int "RIOT_JOBS padded" 3 (Pool.default_jobs ());
  Unix.putenv "RIOT_JOBS" "0";
  check_int "RIOT_JOBS=0 -> 1" 1 (Pool.default_jobs ());
  Unix.putenv "RIOT_JOBS" "lots";
  check_int "RIOT_JOBS garbage -> 1" 1 (Pool.default_jobs ());
  Unix.putenv "RIOT_JOBS" ""

let qcheck_pool =
  [ QCheck.Test.make ~name:"pool: parallel_map = List.map" ~count:100
      QCheck.(pair (int_range 1 6) (small_list int))
      (fun (jobs, xs) ->
        Pool.parallel_map ~jobs (fun x -> (2 * x) - 1) xs
        = List.map (fun x -> (2 * x) - 1) xs);
    QCheck.Test.make ~name:"pool: parallel_filter_map = List.filter_map" ~count:100
      QCheck.(pair (int_range 1 6) (small_list int))
      (fun (jobs, xs) ->
        let f x = if x land 1 = 0 then Some (x asr 1) else None in
        Pool.parallel_filter_map ~jobs f xs = List.filter_map f xs)
  ]

let suite =
  ( "pool",
    [ Alcotest.test_case "order preserved" `Quick test_map_order;
      Alcotest.test_case "jobs=1 identity" `Quick test_jobs1_identity;
      Alcotest.test_case "filter_map" `Quick test_filter_map;
      Alcotest.test_case "exception propagation" `Quick test_exceptions;
      Alcotest.test_case "pool reuse across batches" `Quick test_pool_reuse;
      Alcotest.test_case "create/shutdown" `Quick test_create_shutdown;
      Alcotest.test_case "RIOT_JOBS env" `Quick test_riot_jobs_env ]
    @ List.map QCheck_alcotest.to_alcotest qcheck_pool )
